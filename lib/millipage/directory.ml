module Host_set = Set.Make (Int)

type read_flight = {
  rf_req : int;
  rf_from : int;
  mutable rf_supplier : int;
  rf_group : bool;
}

type pending =
  | No_op
  | Reads_in_flight of { mutable flights : read_flight list }
  | Write_waiting_invals of {
      req_id : int;
      from : int;
      targets : Host_set.t;
      mutable waiting : Host_set.t;
    }
  | Write_in_flight of { req_id : int; from : int; mutable supplier : int }
  | Push_waiting_acks of { req_id : int; from : int; mutable waiting : Host_set.t }
  | Mode_switch_wait of { epoch : int; mutable waiting : Host_set.t }
      (** epoch fence of a consistency-mode switch: every sharer must drop
          its copy and acknowledge before any post-switch access starts
          (concurrent requests queue behind the fence) *)

type entry = {
  mp : Mp_multiview.Minipage.t;
  mutable owner : int;
  mutable copyset : Host_set.t;
  mutable pending : pending;
  queue : queued Queue.t;
  mutable shadow : bytes option;
  mutable lost : bool;
  mutable mode : Proto.mode;
      (** which protocol serves this minipage; switched only at sync points *)
  mutable epoch : int;  (** bumped on every mode switch *)
}

and queued =
  | Q_request of { req_id : int; from : int; access : Proto.access; addr : int }
  | Q_push of { req_id : int; from : int; data : bytes }

type t = {
  initial_owner : int;
  table : (int, entry) Hashtbl.t;
  mutable competing : int;
  mutable queued_now : int;
  mutable queued_max : int;
  (* idempotence state for the reliable transport: request ids the manager
     has accepted, and those whose operation has fully completed (stamped
     with the completion time so both tables can be pruned once the
     retransmission window has passed — req_ids are globally unique so there
     is no reuse to fear, only memory growth). *)
  seen_reqs : (int, unit) Hashtbl.t;
  completed_reqs : (int, float) Hashtbl.t;
}

let create ~initial_owner =
  {
    initial_owner;
    table = Hashtbl.create 256;
    competing = 0;
    queued_now = 0;
    queued_max = 0;
    seen_reqs = Hashtbl.create 64;
    completed_reqs = Hashtbl.create 64;
  }

let register t mp =
  let entry =
    {
      mp;
      owner = t.initial_owner;
      copyset = Host_set.singleton t.initial_owner;
      pending = No_op;
      queue = Queue.create ();
      shadow = None;
      lost = false;
      mode = Proto.Sc;
      epoch = 0;
    }
  in
  Hashtbl.replace t.table mp.Mp_multiview.Minipage.id entry

let entry t ~mp_id =
  match Hashtbl.find_opt t.table mp_id with
  | Some e -> e
  | None -> raise Not_found

let find t ~mp_id = Hashtbl.find_opt t.table mp_id
let adopt t e = Hashtbl.replace t.table e.mp.Mp_multiview.Minipage.id e
let remove t ~mp_id = Hashtbl.remove t.table mp_id

let absorb_idempotence t ~from =
  Hashtbl.iter (fun req_id () -> Hashtbl.replace t.seen_reqs req_id ()) from.seen_reqs;
  Hashtbl.iter
    (fun req_id at -> Hashtbl.replace t.completed_reqs req_id at)
    from.completed_reqs

let busy e = e.pending <> No_op

let enqueue t e q =
  t.competing <- t.competing + 1;
  t.queued_now <- t.queued_now + 1;
  if t.queued_now > t.queued_max then t.queued_max <- t.queued_now;
  Queue.add q e.queue

let dequeue t e =
  let q = Queue.take_opt e.queue in
  (match q with Some _ -> t.queued_now <- t.queued_now - 1 | None -> ());
  q

let drop_queued t e ~keep =
  let dropped = ref [] in
  let kept = Queue.create () in
  Queue.iter
    (fun q -> if keep q then Queue.add q kept else dropped := q :: !dropped)
    e.queue;
  Queue.clear e.queue;
  Queue.transfer kept e.queue;
  t.queued_now <- t.queued_now - List.length !dropped;
  List.rev !dropped

let note_request t ~req_id =
  if Hashtbl.mem t.seen_reqs req_id then false
  else begin
    Hashtbl.add t.seen_reqs req_id ();
    true
  end

let mark_completed t ~req_id ~now = Hashtbl.replace t.completed_reqs req_id now
let completed t ~req_id = Hashtbl.mem t.completed_reqs req_id

let prune_completed t ~before =
  let stale =
    Hashtbl.fold
      (fun req_id at acc -> if at < before then req_id :: acc else acc)
      t.completed_reqs []
  in
  List.iter
    (fun req_id ->
      Hashtbl.remove t.completed_reqs req_id;
      Hashtbl.remove t.seen_reqs req_id)
    stale;
  List.length stale

let idempotence_size t = Hashtbl.length t.seen_reqs + Hashtbl.length t.completed_reqs

let completed_stamps t =
  Hashtbl.fold (fun req_id at acc -> (req_id, at) :: acc) t.completed_reqs []

let peek e = Queue.peek_opt e.queue
let competing_requests t = t.competing
let queue_depth t = t.queued_now
let max_queue_depth t = t.queued_max
let entries t = Hashtbl.to_seq_values t.table

(* ------------------------------------------------------------------ *)
(* Backup replica: the receiving side of a home's directory log.       *)
(* ------------------------------------------------------------------ *)

type shard = t

module Replica = struct
  type rentry = {
    mutable r_owner : int;
    mutable r_copyset : Host_set.t;
    mutable r_shadow : bytes option;
    mutable r_mode : Proto.mode;
    mutable r_epoch : int;
  }

  type nonrec t = {
    r_entries : (int, rentry) Hashtbl.t;  (* mp_id -> replicated state *)
    r_completed : (int, float) Hashtbl.t;  (* req_id -> original stamp *)
    r_open : (int, int) Hashtbl.t;  (* admitted, not yet completed *)
    mutable r_applied : int;  (* highest applied lseq *)
  }

  let create () =
    {
      r_entries = Hashtbl.create 64;
      r_completed = Hashtbl.create 64;
      r_open = Hashtbl.create 16;
      r_applied = 0;
    }

  let rentry t ~mp_id ~owner =
    match Hashtbl.find_opt t.r_entries mp_id with
    | Some r -> r
    | None ->
      let r =
        {
          r_owner = owner;
          r_copyset = Host_set.singleton owner;
          r_shadow = None;
          r_mode = Proto.Sc;
          r_epoch = 0;
        }
      in
      Hashtbl.add t.r_entries mp_id r;
      r

  (* Seed a fresh minipage's replica at allocation time (the init phase is
     message-free, mirroring how hint caches are seeded). *)
  let seed t ~mp_id ~owner = ignore (rentry t ~mp_id ~owner)

  let apply t ~lseq (record : Proto.log_record) =
    t.r_applied <- lseq;
    match record with
    | Proto.L_admit { req_id; mp_id } -> Hashtbl.replace t.r_open req_id mp_id
    | Proto.L_complete { req_id; at } ->
      Hashtbl.remove t.r_open req_id;
      Hashtbl.replace t.r_completed req_id at
    | Proto.L_state { mp_id; owner; copyset } ->
      let r = rentry t ~mp_id ~owner in
      r.r_owner <- owner;
      r.r_copyset <- Host_set.of_list copyset
    | Proto.L_shadow { mp_id; data } ->
      let r = rentry t ~mp_id ~owner:0 in
      r.r_shadow <- Some (Bytes.copy data)
    | Proto.L_mode { mp_id; mode; epoch } ->
      let r = rentry t ~mp_id ~owner:0 in
      r.r_mode <- mode;
      r.r_epoch <- epoch
    | Proto.L_diff { mp_id; diff } -> (
      (* a switch to Rc always logs a full L_shadow before the first L_diff,
         so the patch target exists; a diff racing a demotion's final
         records can arrive after the shadow was dropped — harmless, the
         next L_shadow re-seeds it whole *)
      match Hashtbl.find_opt t.r_entries mp_id with
      | Some ({ r_shadow = Some s; _ } as r) ->
        let s = Bytes.copy s in
        Twin_diff.apply diff s;
        r.r_shadow <- Some s
      | Some _ | None -> ())

  let applied t = t.r_applied
  let find t ~mp_id = Hashtbl.find_opt t.r_entries mp_id

  (* Same horizon as the primary's [prune_completed]: a completion older
     than the retransmission window suppresses nothing, so replicating it
     forever would unbound the replica on soak runs. *)
  let prune t ~before =
    let stale =
      Hashtbl.fold
        (fun req_id at acc -> if at < before then req_id :: acc else acc)
        t.r_completed []
    in
    List.iter (Hashtbl.remove t.r_completed) stale;
    List.length stale
  let open_admissions t = Hashtbl.fold (fun r mp acc -> (r, mp) :: acc) t.r_open []
  let completed_count t = Hashtbl.length t.r_completed

  (* Promotion-time idempotence handoff: install every replicated completion
     into the promoted shard's tables, carrying the ORIGINAL completion
     stamps so the duplicate-suppression horizon is the primary's, not the
     promotion time (a stamp reset would also re-extend retention of
     long-dead ids past their prune window). *)
  let handoff_idempotence t ~(into : shard) =
    Hashtbl.iter
      (fun req_id at ->
        Hashtbl.replace into.seen_reqs req_id ();
        Hashtbl.replace into.completed_reqs req_id at)
      t.r_completed
end
