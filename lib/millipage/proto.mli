(** Millipage protocol messages (Figure 3 of the paper, plus the
    synchronization and push traffic).

    All control messages are header-sized (32 bytes); data messages carry the
    minipage contents and model the two-stage receive of §3.3 — the header
    with the original request and translation information, then the contents
    landing directly in the privileged view. *)

type access = Read | Write

(** Translation information filled in by the manager from the MPT: minipage
    base, size, and its view — everything a non-manager host needs to set
    protection without any local lookup. *)
type info = { mp_id : int; base_off : int; length : int; mp_view : int }

(** Per-minipage consistency protocol.  [Sc] is the paper's Figure-3
    single-writer invalidation protocol; [Rc] is the multi-writer
    release-consistent path: twins on write fault, run-length diffs flushed
    to the home's master copy at release, conservative local invalidation at
    acquire.  A minipage's mode is owned by its home, changes only at sync
    points, and every switch is fenced by an epoch handshake
    ({!Mode_switch}/{!Mode_ack}) so home, backup replica and sharers agree
    before the first post-switch access. *)
type mode = Sc | Rc

val mode_to_string : mode -> string

(** One record of a home's logical write-ahead log, streamed to its backup
    over the ARQ transport.  The channel is FIFO exactly-once, so the backup
    always holds a strict prefix of the primary's log: [L_admit] precedes the
    matching [L_complete], and an [L_state]/[L_shadow] never overtakes the
    operation that produced it. *)
type log_record =
  | L_admit of { req_id : int; mp_id : int }
      (** the home accepted an operation (request or push) on [mp_id] *)
  | L_complete of { req_id : int; at : float }
      (** the operation's final ack landed; [at] is the {e original}
          completion time, carried across promotion so the backup's
          duplicate-suppression horizon matches the primary's *)
  | L_state of { mp_id : int; owner : int; copyset : int list }
      (** directory state after a transfer/invalidation round settled *)
  | L_shadow of { mp_id : int; data : bytes }
      (** the home's shadow copy was refreshed — the backup's replica of the
          last release-consistent contents *)
  | L_mode of { mp_id : int; mode : mode; epoch : int }
      (** a mode switch completed its epoch handshake; after a promotion the
          backup serves the minipage under the same protocol *)
  | L_diff of { mp_id : int; diff : Twin_diff.t }
      (** a release-time diff reached the home's master copy; the backup
          patches its replica shadow with the same runs (a switch to [Rc]
          always logs a full [L_shadow] first, so the patch target exists) *)

type body =
  | Request of { req_id : int; from : int; access : access; addr : int }
      (** faulting host → manager; carries only the faulting address *)
  | Forward of { req_id : int; from : int; access : access; info : info }
      (** manager → replica holding a copy *)
  | Reply_header of { req_id : int; access : access; info : info }
      (** replica → faulting host, stage 1 *)
  | Reply_data of { req_id : int; access : access; info : info; data : bytes }
      (** replica → faulting host, stage 2: minipage contents *)
  | Write_grant of { req_id : int; info : info }
      (** manager → faulting host that already holds a read copy: upgrade
          without data transfer *)
  | Invalidate of { req_id : int; info : info }  (** manager → read-copy holder *)
  | Invalidate_reply of { req_id : int; mp_id : int; from : int }
  | Ack of { req_id : int; mp_id : int; from : int }
      (** faulting host → manager once the woken thread has its access: ends
          the minipage's busy period (the delta-like mechanism of §3.3) *)
  | Home_redirect of { req_id : int; mp_id : int; home : int }
      (** home → requester whose home hint was stale (the minipage migrated
          to its first toucher, or was re-homed after a crash): update the
          hint and resend to [home] *)
  | Barrier_enter of { from : int; tid : int; phase : int }
      (** [tid] identifies the entering thread, so recovery can rebuild a
          barrier's entered-set idempotently after its home host died *)
  | Barrier_release of { phase : int }
  | Lock_acquire of { req_id : int; from : int; tid : int; lock : int }
  | Lock_grant of { lock : int; tid : int }
  | Lock_release of { from : int; lock : int }
  | Push of { req_id : int; from : int; info : info; data : bytes }
      (** pushing host → manager: distribute fresh read copies to all hosts
          (the TSP minimal-tour pattern of §4.3) *)
  | Push_update of { info : info; data : bytes }  (** manager → every host *)
  | Push_update_ack of { mp_id : int; from : int }
  | Push_complete of { req_id : int }  (** manager → pushing host: resume *)
  | Group_fetch of { req_id : int; from : int; group_id : int }
      (** composed-view fetch (§5): bring read copies of a whole minipage
          group in one operation *)
  | Group_plan of { req_id : int; batches : int }
      (** manager → fetching host: how many per-owner data batches follow *)
  | Forward_group of { req_id : int; from : int; members : info list }
      (** manager → a replica owning several of the group's minipages *)
  | Group_data of { req_id : int; members : (info * bytes) list }
      (** replica → fetching host: all requested minipages, gathered *)
  | Group_ack of { req_id : int; from : int; mp_ids : int list }
  | Group_replan of { req_id : int; drop : int }
      (** manager → fetching host after crash recovery: [drop] announced
          batches died with their supplier; the skipped members fault on
          demand later *)
  | Rc_data of { req_id : int; access : access; info : info; epoch : int; data : bytes }
      (** home → requester: a release-consistent serve straight from the
          home's master copy — no forward hop, no invalidation round.  The
          reply itself tells the requester the minipage is in [Rc] mode; a
          [Write] serve is twinned at the receiver. *)
  | Rc_diff of {
      req_id : int;
      from : int;
      mp_id : int;
      epoch : int;
      diff : Twin_diff.t;
    }
      (** sharer → home at release (barrier entry, unlock, push): the writes
          made since the twin was taken, applied to the master copy *)
  | Rc_diff_ack of { req_id : int; mp_id : int }
      (** home → sharer: the diff reached the master; the release may
          complete *)
  | Mode_switch of { mp_id : int; epoch : int; mode : mode; info : info }
      (** home → sharers: the epoch fence of a mode switch.  Receivers drop
          their local copies (a dirty RC copy is flushed first — the channel
          is FIFO, so the diff always precedes the ack) and acknowledge;
          the home serves no new access until every sharer acked. *)
  | Mode_ack of { mp_id : int; epoch : int; from : int; data : bytes option }
      (** sharer → home: fence acknowledged.  On an SC→RC promotion the
          acking sharer that still holds a valid SC copy includes its bytes;
          the home adopts the owner's payload as the RC master (the home
          itself need not be a sharer, and its shadow may be one release
          behind). *)
  | Heartbeat of { from : int; beat : int }
      (** every host → manager, each heartbeat interval; the failure
          detector's only liveness signal *)
  | Dead_notice of { dead : int }
      (** manager → every survivor once [dead] is declared dead *)
  | Log_append of { primary : int; lseq : int; record : log_record }
      (** home → its backup: the [lseq]'th record of the home's directory
          log (per-primary sequence, counted from 1) *)

(** What actually travels on the fabric: a protocol body stamped with the
    sending channel's sequence number, or a transport-level acknowledgement.
    The sequence numbers drive the hop-by-hop retransmission layer in {!Dsm}
    that restores FastMessages semantics over a faulty fabric; on a reliable
    fabric the transport is inert and [seq] is always 0. *)
type packet =
  | Data of { seq : int; body : body }
  | Tack of { seq : int }  (** transport ack: "I have received [seq]" *)

val access_to_string : access -> string

val describe_record : log_record -> string
(** Short tag for logging/debugging, e.g. ["complete r17"]. *)

val describe : body -> string
(** Short tag for logging/debugging. *)

val describe_packet : packet -> string
(** [Data] packets render as their body ({!describe}), so fault-free traces
    are unchanged by the transport wrapper; [Tack]s render as ["TACK(s<n>)"]. *)
