type event = { time : float; host : int; kind : string; detail : string }

type t = {
  capacity : int;
  buf : event option array;
  mutable next : int;  (* total events ever recorded *)
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { capacity; buf = Array.make capacity None; next = 0; on = false }

let enabled t = t.on
let set_enabled t on = t.on <- on

let record t ~time ~host ~kind ~detail =
  if t.on then begin
    t.buf.(t.next mod t.capacity) <- Some { time; host; kind; detail };
    t.next <- t.next + 1
  end

let events t =
  let start = max 0 (t.next - t.capacity) in
  let out = ref [] in
  for i = t.next - 1 downto start do
    match t.buf.(i mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let dropped t = max 0 (t.next - t.capacity)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0

let pp_event fmt e =
  Format.fprintf fmt "[%8.1f] h%d  %-9s %s" e.time e.host e.kind e.detail

let dump t fmt =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t);
  if dropped t > 0 then Format.fprintf fmt "(%d earlier events dropped)@." (dropped t)

let find t ~kind = List.filter (fun e -> e.kind = kind) (events t)
