type event = { time : float; host : int; kind : string; detail : string }
type t = Mp_obs.Recorder.t

let create ?(capacity = 4096) () = Mp_obs.Recorder.create ~capacity ()
let enabled = Mp_obs.Recorder.enabled
let set_enabled = Mp_obs.Recorder.set_enabled

let record t ~time ~host ~kind ~detail =
  Mp_obs.Recorder.record t ~time ~host (Mp_obs.Event.Mark { kind; detail })

let of_typed (e : Mp_obs.Event.t) =
  {
    time = e.time;
    host = e.host;
    kind = Mp_obs.Event.kind_name e.kind;
    detail = Mp_obs.Event.detail e.kind;
  }

let events t = List.map of_typed (Mp_obs.Recorder.events t)
let dropped = Mp_obs.Recorder.dropped
let clear = Mp_obs.Recorder.clear

let pp_event fmt e =
  Format.fprintf fmt "[%8.1f] h%d  %-9s %s" e.time e.host e.kind e.detail

let dump t fmt =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t);
  if dropped t > 0 then Format.fprintf fmt "(%d earlier events dropped)@." (dropped t)

let find t ~kind = List.filter (fun e -> e.kind = kind) (events t)
