type t = {
  fault_us : float;
  get_prot_us : float;
  set_prot_us : float;
  mpt_lookup_us : float;
  header_bytes : int;
  dispatch_us : float;
  sync_dispatch_us : float;
  wakeup_us : float;
  recv_dma_us_per_byte : float;
}

let default =
  {
    fault_us = 26.0;
    get_prot_us = 7.0;
    set_prot_us = 12.0;
    mpt_lookup_us = 7.0;
    header_bytes = 32;
    dispatch_us = 21.0;
    sync_dispatch_us = 12.0;
    wakeup_us = 25.0;
    recv_dma_us_per_byte = 0.0086;
  }

let data_message_bytes _t len = len
