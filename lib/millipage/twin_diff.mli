(** Twinning and run-length diffs, as used by Munin/TreadMarks-style relaxed
    consistency DSMs (and measured in §4.2: a run-length diff of a 4 KB page
    takes 250 µs, linear in the page size). *)

type t
(** An encoded diff: a list of (offset, replacement bytes) runs. *)

val twin : bytes -> bytes
(** Snapshot copy taken at the first write fault on a page. *)

val diff : twin:bytes -> current:bytes -> t
(** Run-length scan; both buffers must have equal length. *)

val apply : t -> bytes -> unit
(** Patch the target in place.  Raises [Invalid_argument] if a run falls
    outside the target. *)

val is_empty : t -> bool
val run_count : t -> int

val encoded_bytes : t -> int
(** Wire size: 8 bytes of (offset, length) per run plus the replacement
    bytes — what a TreadMarks-style system ships at release time. *)

val creation_cost_us : page_bytes:int -> float
(** The paper's measured diff-creation cost: 250 µs for 4 KB, linear. *)

val apply_cost_us : t -> float
