(** Manager-side directory: per-minipage location and serialization state.

    One entry per minipage holds the copyset (hosts with read copies), the
    owner (host with the writable copy, or the last writer), and the busy
    flag + queue that serialize operations on the minipage.  Requests that
    arrive while an earlier request on the same minipage is still in flight
    are queued — those are the "competing requests" counted in Figure 7. *)

module Host_set : Set.S with type elt = int

type read_flight = {
  rf_req : int;  (** request id (the obs span) *)
  rf_from : int;  (** requesting host *)
  mutable rf_supplier : int;  (** host the Forward went to (may be re-aimed
                                  by crash recovery) *)
  rf_group : bool;  (** part of a batched group fetch *)
}

type pending =
  | No_op
  | Reads_in_flight of { mutable flights : read_flight list }
      (** concurrent read requests are all forwarded immediately — only
          writes conflict, which is what keeps the competing-request count of
          unchunked WATER low (§4.4).  Each outstanding forward is tracked so
          crash recovery can re-aim flights whose supplier or requester
          died. *)
  | Write_waiting_invals of {
      req_id : int;
      from : int;
      targets : Host_set.t;  (** full invalidation fan-out, fixed *)
      mutable waiting : Host_set.t;  (** targets still to ack *)
    }
  | Write_in_flight of { req_id : int; from : int; mutable supplier : int }
      (** [supplier < 0]: ownership upgrade, no data in flight *)
  | Push_waiting_acks of { req_id : int; from : int; mutable waiting : Host_set.t }
  | Mode_switch_wait of { epoch : int; mutable waiting : Host_set.t }
      (** the epoch fence of a consistency-mode switch: every sharer must
          drop its copy and acknowledge before any post-switch access starts
          (concurrent requests queue behind the fence and drain under the
          new mode) *)

type entry = {
  mp : Mp_multiview.Minipage.t;
  mutable owner : int;
  mutable copyset : Host_set.t;
  mutable pending : pending;
  queue : queued Queue.t;
  mutable shadow : bytes option;
      (** manager-side shadow copy: the minipage's content as of its last
          ownership/data transfer (or barrier sync) — the recovery source
          when the owner dies holding the only copy *)
  mutable lost : bool;
      (** the dead owner wrote after the last transfer: the recovered shadow
          is the last {e observed} version, but app-level data was lost —
          survivor accesses fail fast instead of silently reading it *)
  mutable mode : Proto.mode;
      (** which protocol serves this minipage — the paper's Figure-3
          single-writer machine ([Sc]) or the multi-writer diff path ([Rc]);
          switched by the adaptation governor at sync points only *)
  mutable epoch : int;  (** bumped on every mode switch *)
}

and queued =
  | Q_request of { req_id : int; from : int; access : Proto.access; addr : int }
  | Q_push of { req_id : int; from : int; data : bytes }

type t

val create : initial_owner:int -> t

val register : t -> Mp_multiview.Minipage.t -> unit
(** Create the entry for a freshly allocated minipage, owned (with the only
    copy) by [initial_owner]. *)

val entry : t -> mp_id:int -> entry
(** Raises [Not_found]. *)

val find : t -> mp_id:int -> entry option
(** Shard-aware lookup: [None] when this shard does not home the minipage. *)

val adopt : t -> entry -> unit
(** Install an entry that migrated from another shard (first-toucher
    placement, or crash recovery re-homing a dead home's entries). *)

val remove : t -> mp_id:int -> unit

val absorb_idempotence : t -> from:t -> unit
(** Merge another shard's seen/completed request-id tables into this one, so
    duplicates of requests originally served by a re-homed shard are still
    suppressed at the new home. *)

val busy : entry -> bool

val enqueue : t -> entry -> queued -> unit
(** Queue a competing request and bump the competing-requests counter. *)

val dequeue : t -> entry -> queued option
val peek : entry -> queued option

val drop_queued : t -> entry -> keep:(queued -> bool) -> queued list
(** Remove (and return, oldest first) every queued operation for which
    [keep] is false, preserving the order of the survivors and adjusting the
    queue-depth accounting.  Used by crash recovery to drop a dead host's
    queued requests. *)

(** {2 Idempotence under retransmission}

    With the reliable transport active, a retransmitted request can reach the
    manager again after the original was already accepted (the transport
    dedupes per-channel sequence numbers, but a sender-side timeout can refire
    after a slow but undropped delivery).  The manager keeps every accepted
    request id so duplicates are suppressed instead of double-served. *)

val note_request : t -> req_id:int -> bool
(** [true] the first time [req_id] is seen (caller should serve it), [false]
    on any later sighting (caller must drop the duplicate). *)

val mark_completed : t -> req_id:int -> now:float -> unit
(** Record that [req_id]'s whole operation (through its final ack) is done,
    stamped with the completion time for later pruning. *)

val completed : t -> req_id:int -> bool
(** Whether [req_id] completed; stale acks for completed requests are
    tolerated rather than fatal. *)

val prune_completed : t -> before:float -> int
(** Forget request ids whose operation completed before the given time —
    i.e. whose retransmission window has passed, so no duplicate can still
    arrive.  Bounds both idempotence tables on long runs; returns the number
    of ids pruned. *)

val idempotence_size : t -> int
(** Combined size of the seen/completed tables (for tests and soak
    monitoring). *)

val completed_stamps : t -> (int * float) list
(** Every completed request id with its original completion stamp.  Used at
    backup promotion to diff the corpse's table against the replica: hits are
    completions the asynchronous log lost in the primary's final
    retransmission window. *)

val competing_requests : t -> int
(** Total number of requests that ever had to queue behind an in-flight one
    (the quantity reported in §4.4 / Figure 7). *)

val queue_depth : t -> int
(** Requests currently queued behind in-flight ones, across all minipages. *)

val max_queue_depth : t -> int
(** High-water mark of {!queue_depth} over the run. *)

val entries : t -> entry Seq.t

(** {2 Backup replica}

    The receiving side of a home's logical write-ahead log
    ({!Proto.log_record}).  A backup host keeps one replica per primary it
    backs; applying the (FIFO, exactly-once) record stream maintains a
    strict prefix of the primary's directory state — owner/copyset images,
    shadow contents, completed-request stamps and still-open admissions —
    which promotion installs under the same home id when the primary is
    declared dead. *)

type shard = t
(** Alias for {!t}, usable inside {!Replica} where [t] is shadowed. *)

module Replica : sig
  type rentry = {
    mutable r_owner : int;
    mutable r_copyset : Host_set.t;
    mutable r_shadow : bytes option;
    mutable r_mode : Proto.mode;
    mutable r_epoch : int;
  }

  type t

  val create : unit -> t

  val seed : t -> mp_id:int -> owner:int -> unit
  (** Register a fresh minipage's replica at allocation time (the init phase
      is message-free, mirroring hint-cache seeding). *)

  val apply : t -> lseq:int -> Proto.log_record -> unit
  (** Apply the [lseq]'th log record. *)

  val applied : t -> int
  (** Highest applied log sequence number. *)

  val find : t -> mp_id:int -> rentry option

  val prune : t -> before:float -> int
  (** Forget replicated completions older than the retransmission window
      (mirrors {!prune_completed}); returns the number pruned. *)

  val open_admissions : t -> (int * int) list
  (** [(req_id, mp_id)] pairs admitted by the primary whose completion the
      backup never saw — the in-flight tail promotion must close. *)

  val completed_count : t -> int

  val handoff_idempotence : t -> into:shard -> unit
  (** Install every replicated completion into the promoted shard's
      idempotence tables, carrying the {e original} completion stamps so the
      duplicate-suppression horizon survives promotion. *)
end
