(** Millipage: a thin-layer, sequentially consistent, fine-grain DSM.

    One simulated process per host.  Each minipage has a {e home} host that
    runs its Figure-3 state machine (directory lookup, forwards,
    invalidations); the home is assigned at {!malloc} by the configured
    {!Config.Homes.policy}.  Under the default [Central] policy host 0 homes
    everything — the paper's single-manager protocol, bit-identical to the
    pre-sharding implementation.  Application threads run as simulated
    processes and access shared memory through {!ctx} accessors; a protection
    violation raises a (simulated) page fault whose handler executes the
    protocol of Figure 3: request → home translate/forward → replica reply
    directly into the privileged view → protection upgrade → wake → ack.

    Usage: create the system, allocate and initialize shared memory, spawn
    one or more application threads per host, then {!run}.  Allocation and
    initialization writes are an init-phase facility (host 0 owns every fresh
    minipage, so they involve no protocol traffic). *)

type t
type ctx
(** Handle given to each application thread. *)

module Config : sig
  (** Unreliable-network knobs: injected fabric faults and the hop-by-hop
      reliable transport that masks them.  Inert under
      {!Mp_net.Fabric.no_faults}. *)
  module Net : sig
    type t = {
      faults : Mp_net.Fabric.faults;
          (** network fault injection; {!Mp_net.Fabric.no_faults} (the
              default) keeps the fabric's reliable FM semantics bit-for-bit *)
      seed : int;  (** seed of the fault-injection RNG root *)
      rto_us : float;
          (** initial transport retransmission timeout (µs); only meaningful
              with faults active *)
      rto_backoff : float;  (** timeout multiplier per retry *)
      max_retries : int;
          (** retransmissions per packet before the run is declared
              unrecoverable ([Failure]) *)
    }

    val default : t
    (** No faults; RTO 5 ms ×2 up to 12 retries when enabled. *)

    val with_faults : t -> Mp_net.Fabric.faults -> t
    val with_seed : t -> int -> t

    val with_rto :
      t -> ?rto_us:float -> ?rto_backoff:float -> ?max_retries:int -> unit -> t
  end

  (** Crash-fault tolerance knobs: injected host crashes/stalls, the
      heartbeat failure detector, and the deadlock watchdog.  [None] (the
      default) spawns no extra process and sends no extra message — fault-free
      runs are bit-identical to a build without the subsystem. *)
  module Ft : sig
    type t = {
      hb_interval_us : float;  (** heartbeat period per host *)
      suspect_after_us : float;  (** silence before a host is suspected *)
      declare_after_us : float;
          (** silence before a suspect is declared dead; a stall shorter than
              this survives (the suspicion is retracted) *)
      crashes : (int * float) list;  (** (host, time µs): fail-stop *)
      stalls : (int * float * float) list;  (** (host, time µs, duration µs) *)
      deadlock_ticks : int;
          (** detector ticks without protocol progress before {!Deadlock} *)
    }

    val default : t
    (** 1 ms heartbeats, suspect after 3 ms, declare after 8 ms, no injected
        faults, deadlock after 500 idle ticks. *)

    val with_crashes : t -> (int * float) list -> t
    val with_stalls : t -> (int * float * float) list -> t
  end

  (** Home assignment: which host runs each minipage's directory state
      machine. *)
  module Homes : sig
    type policy =
      | Central  (** everything homed at host 0 (paper §3, Figure 3) *)
      | Round_robin  (** minipage id mod hosts *)
      | Block  (** contiguous runs of [block] minipage ids per home *)
      | First_toucher
          (** homed at host 0 until first touched; the first remote requester
              becomes the home (a one-time migration, learned lazily by the
              other hosts through the redirect path) *)

    type t = {
      policy : policy;
      block : int;
      replicate : bool;
          (** stream each home shard's directory log to a backup host that
              promotes (under the same home id) when the home is declared
              dead.  Only active together with {!Config.t.ft}; inert — zero
              extra messages — otherwise. *)
    }

    val default : t
    (** [Central], block size 8, no replication. *)

    val central : t
    val round_robin : t

    val block : int -> t
    (** [block n] homes runs of [n] consecutive minipage ids per host. *)

    val first_toucher : t

    val policy_name : policy -> string
    (** ["central"], ["rr"], ["block"], ["ft"]. *)

    val policy_of_string : string -> policy option
    (** Inverse of {!policy_name}; also accepts ["round-robin"] and
        ["first-toucher"]. *)

    val with_replicate : t -> bool -> t

    val backup_of : hosts:int -> int -> int
    (** Backup placement: [backup_of ~hosts home] is the host that receives
        [home]'s directory log — the next host, mod the host count. *)
  end

  (** Per-minipage consistency: which protocol serves each minipage, as a
      first-class run mode.  [`Sc] is the paper's Figure-3 single-writer
      invalidation protocol and is bit-identical to the pre-mode build;
      [`Rc] serves every minipage with the multi-writer release-consistent
      path (twins on write fault, run-length diffs flushed to the home's
      master copy at release, conservative invalidation at acquire);
      [`Adaptive] starts everything under SC and lets the online governor
      switch individual minipages between the two at sync points, fed by the
      same sharing signatures the profiler computes. *)
  module Consistency : sig
    type mode = [ `Sc | `Rc | `Adaptive ]

    type t = {
      mode : mode;
      adapt_interval : int;
          (** the governor evaluates its shard every [adapt_interval]
              barrier phases *)
      promote_after : int;
          (** consecutive write-shared/falsely-shared evaluations before an
              SC minipage is promoted to RC *)
      demote_after : int;
          (** consecutive migratory/read-mostly/private evaluations before
              an RC minipage is demoted back to SC *)
    }

    val default : t
    (** [`Sc], evaluate every 2 phases, promote after 2, demote after 2. *)

    val sc : t
    val rc : t
    val adaptive : t
    val with_mode : t -> mode -> t

    val with_adapt_interval : t -> int -> t
    (** Raises [Invalid_argument] below 1. *)

    val with_hysteresis : t -> ?promote_after:int -> ?demote_after:int -> unit -> t

    val mode_name : mode -> string
    (** ["sc"], ["rc"], ["adaptive"]. *)

    val mode_of_string : string -> mode option
    (** Inverse of {!mode_name}. *)
  end

  type ft = Ft.t = {
    hb_interval_us : float;
    suspect_after_us : float;
    declare_after_us : float;
    crashes : (int * float) list;
    stalls : (int * float * float) list;
    deadlock_ticks : int;
  }
  (** @deprecated Compatibility alias for {!Ft.t}. *)

  val default_ft : ft
  (** @deprecated Use {!Ft.default}. *)

  type t = {
    views : int;  (** application views mapped at initialization (§2.4) *)
    object_size : int;  (** shared memory object size, bytes *)
    page_size : int;
    chunking : Mp_multiview.Allocator.chunking;
    cost : Cost_model.t;
    polling : Mp_net.Polling.mode;
    seed : int;
    net : Net.t;  (** network faults + reliable transport *)
    ft : Ft.t option;  (** crash-fault tolerance; [None] disables it entirely *)
    homes : Homes.t;  (** home-assignment policy (default [Central]) *)
    consistency : Consistency.t;
        (** per-minipage protocol modes (default pure SC — bit-identical to
            the pre-mode build) *)
  }

  val default : t
  (** 32 views, 16 MB object, 4 KB pages, no chunking, Table 1 costs,
      NT-timer polling, no faults, no crash-fault tolerance, central homes,
      pure SC consistency. *)

  val with_views : t -> int -> t
  val with_object_size : t -> int -> t
  val with_page_size : t -> int -> t
  val with_chunking : t -> Mp_multiview.Allocator.chunking -> t
  val with_cost : t -> Cost_model.t -> t
  val with_polling : t -> Mp_net.Polling.mode -> t
  val with_seed : t -> int -> t
  val with_net : t -> Net.t -> t
  val with_faults : t -> Mp_net.Fabric.faults -> t
  val with_net_seed : t -> int -> t
  val with_ft : t -> Ft.t option -> t
  val with_homes : t -> Homes.t -> t
  val with_policy : t -> Homes.policy -> t
  val with_replicate : t -> bool -> t
  val with_consistency : t -> Consistency.t -> t
end

exception Deadlock of string
(** The run stopped making progress with live application threads still
    blocked; the message lists the blocked processes and the directory
    queue state. *)

exception Crash_unrecoverable of string
(** A survivor accessed data whose only up-to-date copy died with a crashed
    host (the dead owner wrote after its last observed transfer); the
    message names the lost minipages. *)

val create : Mp_sim.Engine.t -> hosts:int -> ?config:Config.t -> unit -> t

val engine : t -> Mp_sim.Engine.t
val hosts : t -> int

val home_of : t -> addr:int -> int
(** Current home of the minipage holding [addr] — the host running its
    directory state machine.  Valid any time after the address was
    allocated; under [First_toucher] or after crash re-homing the answer can
    change over the run. *)

val homes : t -> int array
(** Home of every allocated minipage, indexed by minipage id. *)

val manager_host : t -> int
(** @deprecated The single-manager accessor from before sharding.  Still
    answers 0 under the [Central] policy; under any other policy there is no
    single manager and it raises [Invalid_argument].  Use {!home_of}. *)

(** {2 Init phase} *)

val malloc : t -> int -> int
(** Allocate from the shared region; returns the virtual address (valid on
    every host).  The fresh minipage's home is assigned here by the
    configured policy.  Must happen before {!run}. *)

val malloc_array : t -> count:int -> size:int -> int array
(** [count] successive allocations of [size] bytes each. *)

val init_write_f64 : t -> int -> float -> unit
val init_write_int : t -> int -> int -> unit
val init_write_i32 : t -> int -> int32 -> unit
val init_write_f32 : t -> int -> float -> unit
val init_write_u8 : t -> int -> int -> unit
(** Host-0 initialization writes; free of simulated cost. *)

val spawn : t -> host:int -> ?name:string -> (ctx -> unit) -> unit
(** Register an application thread.  Spawn all threads before {!run};
    barriers synchronize every spawned thread. *)

val run : t -> unit
(** Drive the simulation to completion.  Raises {!Deadlock} if live
    application threads remain blocked when the event queue drains (or, with
    crash-fault tolerance on, when the watchdog sees no progress), and
    {!Crash_unrecoverable} if a survivor touches data lost in a crash. *)

(** {2 Application-thread operations} *)

val host : ctx -> int
val my_engine : ctx -> Mp_sim.Engine.t

val read_f64 : ctx -> int -> float
val write_f64 : ctx -> int -> float -> unit
val read_int : ctx -> int -> int
val write_int : ctx -> int -> int -> unit
val read_i32 : ctx -> int -> int32
val write_i32 : ctx -> int -> int32 -> unit
val read_f32 : ctx -> int -> float
val write_f32 : ctx -> int -> float -> unit
val read_u8 : ctx -> int -> int
val write_u8 : ctx -> int -> int -> unit

val compute : ctx -> float -> unit
(** Occupy this host's CPU for the given µs of application computation (the
    host is marked busy, degrading its responsiveness to requests under
    NT-timer polling). *)

val barrier : ctx -> unit
(** Global barrier across every spawned thread.  Each barrier phase is homed
    on its own host ([phase mod live hosts] under a sharded policy), so
    barrier traffic does not queue behind a loaded manager. *)

val lock : ctx -> int -> unit
val unlock : ctx -> int -> unit
(** Locks are homed per lock id, like barriers. *)

val prefetch : ctx -> int -> Proto.access -> unit
(** Fire-and-forget fetch of the minipage holding the given address; a later
    access that would have faulted finds the copy already present (§4.3.1's
    LU prefetch calls).  No-op when access is already legal. *)

val push_to_all : ctx -> int -> unit
(** Distribute fresh read copies of the minipage holding the address to all
    hosts (the TSP minimal-tour update).  The caller must hold the writable
    copy; blocks until every host has been updated. *)

(** {2 Composed views (§5)}

    A composed view groups minipages so the application can arbitrate
    between granularities: fetch the whole group in one coarse-grain
    operation (per-supplier gathered data messages instead of one fault per
    minipage), then keep writing fine-grain.  This is the paper's proposed
    fix for WATER's read phase. *)

val compose : t -> int array -> int
(** [compose t addrs] registers the minipages holding the given addresses
    as a composed view (init phase only) and returns its id. *)

val fetch_group : ctx -> int -> unit
(** Bring read copies of every group member this host doesn't already hold.
    One sub-fetch goes to each distinct home among the members (a single
    round-trip under [Central]).  Members busy with a conflicting operation
    are skipped (they fault later on demand).  Blocks until all batches have
    landed. *)

(** {2 Statistics} *)

val breakdown : t -> host:int -> Breakdown.t
val breakdown_total : t -> Breakdown.t

val competing_requests : t -> int
(** Summed over every home shard. *)

val read_faults : t -> int
val write_faults : t -> int
val barriers_entered : t -> int
val locks_acquired : t -> int
val messages_sent : t -> int
val bytes_sent : t -> int
val mpt : t -> Mp_multiview.Mpt.t
val views_used : t -> int
val counters : t -> Mp_util.Stats.Counters.t
(** Protocol-level counters: ["invalidations"], ["acks"], ["pushes"],
    ["replies.data"], ["grant.upgrades"], and under sharded policies
    ["homes.redirects"], ["homes.migrations"], ["homes.rehomes"], ... *)

val obs : t -> Mp_obs.Recorder.t
(** The typed observability recorder (disabled by default;
    [Mp_obs.Recorder.set_enabled] it before {!run} to capture the protocol
    event stream): per-fault spans, phase latency metrics, Perfetto export. *)

val max_queue_depth : t -> int
(** High-water mark of requests queued behind in-flight operations, taken
    over every home shard. *)

val max_queue_depth_by_home : t -> int array
(** Per-home high-water queue depth (index = host id).  Under [Central] only
    index 0 is ever non-zero. *)

val home_redirects : t -> int
(** Requests that reached a stale home and were redirected. *)

val rehomed_minipages : t -> int
(** Shard entries adopted by host 0 after their home host died. *)

(** {2 Fault injection and reliable transport}

    When {!Config.Net.t.faults} enables any fault, protocol bodies travel in
    sequence-numbered {!Proto.packet}s under a hop-by-hop ARQ: every Data is
    acknowledged with a Tack, unacknowledged packets are retransmitted with
    exponential backoff, and receivers resequence and dedupe so the protocol
    still sees exactly-once FIFO delivery.  All of it is inert on a reliable
    fabric. *)

val faulty : t -> bool
val retransmits : t -> int
val dups_suppressed : t -> int

val net_dropped : t -> int
val net_duplicated : t -> int
val net_reordered : t -> int
(** Faults the fabric actually injected during the run. *)

(** {2 Crash-fault tolerance}

    With {!Config.t.ft} set, every non-manager host sends heartbeats to host 0
    over the fabric; a host silent past [suspect_after_us] is suspected, and
    past [declare_after_us] it is declared dead and fenced.  Declaration
    triggers recovery: every live home shard is scrubbed (copysets, in-flight
    operations, queued requests), the dead host's own shard is re-homed onto
    host 0 (survivors learn the new home through the redirect path), minipages
    the dead host exclusively owned are re-materialized from shadow copies
    (refreshed eagerly on every data transfer and at each barrier entry), lock
    leases held by the dead host are revoked and granted to the next live
    waiter, and in-progress barriers and locks homed on the dead host are
    rebuilt on host 0 from sender-side ground truth. *)

val crashed_hosts : t -> int list
(** Hosts that fail-stopped (injected crash or detector fencing). *)

val declared_dead : t -> int list
(** Hosts declared dead (and recovery ran for). *)

val lost_minipages : t -> int list
(** Minipages whose dead owner wrote after the last observed transfer —
    recovered bytes are stale, so survivor accesses raise
    {!Crash_unrecoverable}. *)

val recovered_minipages : t -> int
(** Exclusively-dead-owned minipages successfully re-materialized from
    shadow copies. *)

val heartbeats_sent : t -> int
val leases_revoked : t -> int

val idempotence_size : t -> int
(** Combined size of every shard's request-idempotence tables (bounded by
    periodic pruning of completions older than the retransmission
    window). *)

(** {2 Replicated home shards}

    With {!Config.Homes.replicate} on (and the failure detector active),
    every home streams its directory updates to a designated backup
    ({!Config.Homes.backup_of}) as a logical write-ahead log; when a home is
    declared dead its backup is promoted under the same home id — the
    hint-cache repair is a single atomic rewrite, recovery replays the log
    instead of scrubbing, and there is no host-0 shard adoption.  With the
    flag off (or a single host, or no failure detector), no replication
    state or traffic exists and runs are bit-identical to earlier
    behavior. *)

val replication_on : t -> bool
(** Whether replication is actually live for this instance (flag on {e and}
    failure detector configured {e and} more than one host). *)

val backup_promotions : t -> int
(** Dead homes whose shard was taken over by its backup (as opposed to the
    legacy host-0 adoption). *)

val promoted_homes : t -> int list
(** The dead primaries whose shards were promoted. *)

val log_records_sent : t -> int
(** Directory-log records appended across all primaries (the steady-state
    replication overhead). *)

val log_records_applied : t -> int
(** Log records applied at backups (trails {!log_records_sent} by the
    in-flight tail). *)

val tail_repairs : t -> int
(** Promotion-time repairs of log records lost in the dead primary's final
    retransmission window (reachable only under message loss): completions
    re-installed from the corpse's table plus location state rebuilt from
    the survivors' page protections. *)

val rolled_back_minipages : t -> int
(** Sole-copy minipages whose dead owner wrote after the last sync, restored
    to the last released version instead of being marked lost — the
    release-consistency rollback that replaces {!Crash_unrecoverable}
    fail-fast when replication is on. *)

(** {2 Adaptive consistency}

    With {!Config.Consistency} set to [`Rc] or [`Adaptive], minipages can be
    served by the multi-writer release-consistent path instead of the
    Figure-3 single-writer machine: the home keeps the master copy and
    serves reads and writes from it directly, writers twin the minipage at
    their first write fault, run-length diffs are flushed to the master at
    release points (barrier entry, unlock, push) and clean local copies are
    dropped at acquire points (barrier release, lock grant).  Under
    [`Adaptive] an online governor — fed by the same sharing signatures the
    profiler computes — promotes write-shared and falsely-shared minipages
    to RC and demotes them back when the pattern fades, at sync points only,
    each switch fenced by an epoch handshake so home, backup replica and
    sharers agree before the first post-switch access. *)

val mode_of : t -> addr:int -> Proto.mode
(** Current protocol mode of the minipage holding [addr]. *)

val mode_of_mp : t -> int -> Proto.mode
(** Current protocol mode of a minipage by id. *)

val modes : t -> (Proto.mode * int) list
(** Census of minipages by current mode, as [[(Sc, n); (Rc, m)]]. *)

val mode_switches : t -> int
(** Completed mode switches (promotions + demotions), including
    recovery-forced demotions after a crash. *)

val rc_twins : t -> int
(** Twins created at RC write faults. *)

val rc_diffs : t -> int
(** Release-time diffs flushed to the masters (empty diffs are skipped). *)

val rc_diff_bytes : t -> int
(** Total encoded bytes of those diffs — the quantity to weigh against the
    invalidation traffic SC would have sent. *)

val mode_switch_log : t -> (float * int * Proto.mode) list
(** Every completed switch as [(time µs, mp_id, new mode)], oldest first. *)

(** {2 Test-only protocol mutations}

    Deliberately seeded protocol bugs, used by mpcheck and the test suite to
    prove the coherence and invariant checkers actually catch broken
    protocols (a checker that never fires is indistinguishable from a
    vacuous one).  Never set outside tests. *)
module Testonly : sig
  type mutation =
    | Stale_reply_data of { nth : int }
        (** The [nth] data reply (counting every reply the run sends) serves
            the minipage's initial all-zero snapshot instead of the current
            bytes: a reader that already observed a newer write re-observes
            an older one — the stale-supply bug {!Mp_check.Coherence.check}
            flags. *)
    | Drop_inval_ack of { nth : int }
        (** The [nth] invalidation processed by any host downgrades
            protection but never acknowledges: the writer's invalidation
            round hangs, which surfaces as an unmatched [Inval] /
            unmatched [Fault] in the trace invariants plus a {!Deadlock}. *)
    | Lost_diff of { nth : int }
        (** The [nth] release-consistency diff reaching its home is
            discarded instead of applied to the master copy — but still
            acknowledged, so the release completes and the critical
            section's writes silently vanish.  Invisible to the coherence
            write-rank oracle (nobody ever observes the lost value); only
            the mpcheck refinement spec's sync-point happens-before floors
            catch it. *)

  val set_mutation : t -> mutation option -> unit
  (** Arm (or disarm) a mutation.  Init phase only; resets the fire
      counter. *)

  val mutation_fired : t -> bool
  (** Whether the armed mutation's [nth] trigger was reached this run. *)
end
