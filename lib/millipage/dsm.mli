(** Millipage: a thin-layer, sequentially consistent, fine-grain DSM.

    One simulated process per host; host 0 is the manager and holds the MPT
    and the directory.  Application threads run as simulated processes and
    access shared memory through {!ctx} accessors; a protection violation
    raises a (simulated) page fault whose handler executes the protocol of
    Figure 3: request → manager translate/forward → replica reply directly
    into the privileged view → protection upgrade → wake → ack.

    Usage: create the system, allocate and initialize shared memory, spawn
    one or more application threads per host, then {!run}.  Allocation and
    initialization writes are an init-phase facility (host 0 owns every fresh
    minipage, so they involve no protocol traffic). *)

type t
type ctx
(** Handle given to each application thread. *)

module Config : sig
  (** Crash-fault tolerance knobs: injected host crashes/stalls, the
      heartbeat failure detector, and the deadlock watchdog.  [None] (the
      default) spawns no extra process and sends no extra message — fault-free
      runs are bit-identical to a build without the subsystem. *)
  type ft = {
    hb_interval_us : float;  (** heartbeat period per host *)
    suspect_after_us : float;  (** silence before a host is suspected *)
    declare_after_us : float;
        (** silence before a suspect is declared dead; a stall shorter than
            this survives (the suspicion is retracted) *)
    crashes : (int * float) list;  (** (host, time µs): fail-stop *)
    stalls : (int * float * float) list;  (** (host, time µs, duration µs) *)
    deadlock_ticks : int;
        (** detector ticks without protocol progress before {!Deadlock} *)
  }

  val default_ft : ft
  (** 1 ms heartbeats, suspect after 3 ms, declare after 8 ms, no injected
      faults, deadlock after 500 idle ticks. *)

  type t = {
    views : int;  (** application views mapped at initialization (§2.4) *)
    object_size : int;  (** shared memory object size, bytes *)
    page_size : int;
    chunking : Mp_multiview.Allocator.chunking;
    cost : Cost_model.t;
    polling : Mp_net.Polling.mode;
    seed : int;
    faults : Mp_net.Fabric.faults;
        (** network fault injection; {!Mp_net.Fabric.no_faults} (the default)
            keeps the fabric's reliable FM semantics bit-for-bit *)
    net_seed : int;  (** seed of the fault-injection RNG root *)
    rto_us : float;
        (** initial transport retransmission timeout (µs); only meaningful
            with faults active *)
    rto_backoff : float;  (** timeout multiplier per retry *)
    max_retries : int;
        (** retransmissions per packet before the run is declared
            unrecoverable ([Failure]) *)
    ft : ft option;  (** crash-fault tolerance; [None] disables it entirely *)
  }

  val default : t
  (** 32 views, 16 MB object, 4 KB pages, no chunking, Table 1 costs,
      NT-timer polling, no faults (RTO 5 ms ×2 up to 12 retries when
      enabled). *)
end

exception Deadlock of string
(** The run stopped making progress with live application threads still
    blocked; the message lists the blocked processes and the manager's
    queue state. *)

exception Crash_unrecoverable of string
(** A survivor accessed data whose only up-to-date copy died with a crashed
    host (the dead owner wrote after its last observed transfer); the
    message names the lost minipages. *)

val create : Mp_sim.Engine.t -> hosts:int -> ?config:Config.t -> unit -> t

val engine : t -> Mp_sim.Engine.t
val hosts : t -> int
val manager_host : t -> int

(** {2 Init phase} *)

val malloc : t -> int -> int
(** Allocate from the shared region; returns the virtual address (valid on
    every host).  Must happen before {!run}. *)

val malloc_array : t -> count:int -> size:int -> int array
(** [count] successive allocations of [size] bytes each. *)

val init_write_f64 : t -> int -> float -> unit
val init_write_int : t -> int -> int -> unit
val init_write_i32 : t -> int -> int32 -> unit
val init_write_f32 : t -> int -> float -> unit
val init_write_u8 : t -> int -> int -> unit
(** Host-0 initialization writes; free of simulated cost. *)

val spawn : t -> host:int -> ?name:string -> (ctx -> unit) -> unit
(** Register an application thread.  Spawn all threads before {!run};
    barriers synchronize every spawned thread. *)

val run : t -> unit
(** Drive the simulation to completion.  Raises {!Deadlock} if live
    application threads remain blocked when the event queue drains (or, with
    crash-fault tolerance on, when the watchdog sees no progress), and
    {!Crash_unrecoverable} if a survivor touches data lost in a crash. *)

(** {2 Application-thread operations} *)

val host : ctx -> int
val my_engine : ctx -> Mp_sim.Engine.t

val read_f64 : ctx -> int -> float
val write_f64 : ctx -> int -> float -> unit
val read_int : ctx -> int -> int
val write_int : ctx -> int -> int -> unit
val read_i32 : ctx -> int -> int32
val write_i32 : ctx -> int -> int32 -> unit
val read_f32 : ctx -> int -> float
val write_f32 : ctx -> int -> float -> unit
val read_u8 : ctx -> int -> int
val write_u8 : ctx -> int -> int -> unit

val compute : ctx -> float -> unit
(** Occupy this host's CPU for the given µs of application computation (the
    host is marked busy, degrading its responsiveness to requests under
    NT-timer polling). *)

val barrier : ctx -> unit
(** Global barrier across every spawned thread (manager-centralized). *)

val lock : ctx -> int -> unit
val unlock : ctx -> int -> unit

val prefetch : ctx -> int -> Proto.access -> unit
(** Fire-and-forget fetch of the minipage holding the given address; a later
    access that would have faulted finds the copy already present (§4.3.1's
    LU prefetch calls).  No-op when access is already legal. *)

val push_to_all : ctx -> int -> unit
(** Distribute fresh read copies of the minipage holding the address to all
    hosts (the TSP minimal-tour update).  The caller must hold the writable
    copy; blocks until every host has been updated. *)

(** {2 Composed views (§5)}

    A composed view groups minipages so the application can arbitrate
    between granularities: fetch the whole group in one coarse-grain
    operation (per-supplier gathered data messages instead of one fault per
    minipage), then keep writing fine-grain.  This is the paper's proposed
    fix for WATER's read phase. *)

val compose : t -> int array -> int
(** [compose t addrs] registers the minipages holding the given addresses
    as a composed view (init phase only) and returns its id. *)

val fetch_group : ctx -> int -> unit
(** Bring read copies of every group member this host doesn't already hold.
    Members busy with a conflicting operation are skipped (they fault later
    on demand).  Blocks until all batches have landed. *)

(** {2 Statistics} *)

val breakdown : t -> host:int -> Breakdown.t
val breakdown_total : t -> Breakdown.t
val competing_requests : t -> int
val read_faults : t -> int
val write_faults : t -> int
val barriers_entered : t -> int
val locks_acquired : t -> int
val messages_sent : t -> int
val bytes_sent : t -> int
val mpt : t -> Mp_multiview.Mpt.t
val views_used : t -> int
val counters : t -> Mp_util.Stats.Counters.t
(** Protocol-level counters: ["invalidations"], ["acks"], ["pushes"],
    ["replies.data"], ["grant.upgrades"], ... *)

val trace : t -> Trace.t
(** Protocol event trace (disabled by default; [Trace.set_enabled] it before
    {!run} to capture faults and message receptions). *)

val obs : t -> Mp_obs.Recorder.t
(** The typed observability recorder behind {!trace} (they are the same
    object): per-fault spans, phase latency metrics, Perfetto export. *)

val max_queue_depth : t -> int
(** High-water mark of requests queued at the manager behind in-flight
    operations. *)

(** {2 Fault injection and reliable transport}

    When {!Config.t.faults} enables any fault, protocol bodies travel in
    sequence-numbered {!Proto.packet}s under a hop-by-hop ARQ: every Data is
    acknowledged with a Tack, unacknowledged packets are retransmitted with
    exponential backoff, and receivers resequence and dedupe so the protocol
    still sees exactly-once FIFO delivery.  All of it is inert on a reliable
    fabric. *)

val faulty : t -> bool
val retransmits : t -> int
val dups_suppressed : t -> int

val net_dropped : t -> int
val net_duplicated : t -> int
val net_reordered : t -> int
(** Faults the fabric actually injected during the run. *)

(** {2 Crash-fault tolerance}

    With {!Config.t.ft} set, every non-manager host sends heartbeats to the
    manager over the fabric; a host silent past [suspect_after_us] is
    suspected, and past [declare_after_us] it is declared dead and fenced.
    Declaration triggers manager-side recovery: the directory is scrubbed
    (copysets, in-flight operations, queued requests), minipages the dead
    host exclusively owned are re-materialized from the manager's shadow
    copies (refreshed eagerly on every data transfer and at each barrier
    entry), lock leases held by the dead host are revoked and granted to the
    next live waiter, and in-progress barriers reconfigure to the
    survivors. *)

val crashed_hosts : t -> int list
(** Hosts that fail-stopped (injected crash or detector fencing). *)

val declared_dead : t -> int list
(** Hosts the manager declared dead (and recovery ran for). *)

val lost_minipages : t -> int list
(** Minipages whose dead owner wrote after the last observed transfer —
    recovered bytes are stale, so survivor accesses raise
    {!Crash_unrecoverable}. *)

val recovered_minipages : t -> int
(** Exclusively-dead-owned minipages successfully re-materialized from the
    manager's shadow copies. *)

val heartbeats_sent : t -> int
val leases_revoked : t -> int

val idempotence_size : t -> int
(** Current size of the manager's request-idempotence tables (bounded by
    periodic pruning of completions older than the retransmission
    window). *)
