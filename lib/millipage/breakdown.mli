(** Per-host execution-time breakdown (the right-hand chart of Figure 6):
    computation, prefetch wait, read-fault wait, write-fault wait,
    synchronization wait. *)

type t = {
  mutable compute : float;
  mutable prefetch : float;
  mutable read_fault : float;
  mutable write_fault : float;
  mutable synch : float;
}

val create : unit -> t
val total : t -> float
val add : t -> t -> t
val zero : unit -> t

val to_list : t -> (string * float) list
(** [(label, µs)] rows in bucket order. *)

val fractions : t -> (string * float) list
(** [(label, share)] rows summing to 1 (all zeros when total is 0). *)

val pp : Format.formatter -> t -> unit
