type t = {
  mutable compute : float;
  mutable prefetch : float;
  mutable read_fault : float;
  mutable write_fault : float;
  mutable synch : float;
}

let create () =
  { compute = 0.0; prefetch = 0.0; read_fault = 0.0; write_fault = 0.0; synch = 0.0 }

let zero = create
let total t = t.compute +. t.prefetch +. t.read_fault +. t.write_fault +. t.synch

let add a b =
  {
    compute = a.compute +. b.compute;
    prefetch = a.prefetch +. b.prefetch;
    read_fault = a.read_fault +. b.read_fault;
    write_fault = a.write_fault +. b.write_fault;
    synch = a.synch +. b.synch;
  }

let to_list t =
  [
    ("comp", t.compute);
    ("prefetch", t.prefetch);
    ("read fault", t.read_fault);
    ("write fault", t.write_fault);
    ("synch", t.synch);
  ]

let fractions t =
  let tot = total t in
  let f x = if tot = 0.0 then 0.0 else x /. tot in
  [
    ("comp", f t.compute);
    ("prefetch", f t.prefetch);
    ("read fault", f t.read_fault);
    ("write fault", f t.write_fault);
    ("synch", f t.synch);
  ]

let pp fmt t =
  Format.fprintf fmt "comp=%.0f prefetch=%.0f rf=%.0f wf=%.0f synch=%.0f (us)" t.compute
    t.prefetch t.read_fault t.write_fault t.synch
