type run = { off : int; data : bytes }

type t = run list

let twin page = Bytes.copy page

let diff ~twin ~current =
  let n = Bytes.length twin in
  if Bytes.length current <> n then invalid_arg "Twin_diff.diff: length mismatch";
  let runs = ref [] in
  let i = ref 0 in
  while !i < n do
    if Bytes.get twin !i = Bytes.get current !i then incr i
    else begin
      let start = !i in
      while !i < n && Bytes.get twin !i <> Bytes.get current !i do
        incr i
      done;
      runs := { off = start; data = Bytes.sub current start (!i - start) } :: !runs
    end
  done;
  List.rev !runs

let apply t target =
  List.iter
    (fun { off; data } ->
      if off < 0 || off + Bytes.length data > Bytes.length target then
        invalid_arg "Twin_diff.apply: run outside target";
      Bytes.blit data 0 target off (Bytes.length data))
    t

let is_empty t = t = []
let run_count = List.length

let encoded_bytes t =
  List.fold_left (fun acc { data; _ } -> acc + 8 + Bytes.length data) 0 t

let creation_cost_us ~page_bytes = 250.0 *. float_of_int page_bytes /. 4096.0

let apply_cost_us t = 2.0 +. (0.01 *. float_of_int (encoded_bytes t))
