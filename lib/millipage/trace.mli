(** Protocol event tracing (compatibility shim).

    Historically this module owned its own string-event ring buffer; it is now
    a thin view over {!Mp_obs.Recorder}, the typed observability recorder
    shared by every DSM.  [t] {e is} a recorder, so the same buffer feeds both
    these string events and the typed exporters/checkers in [Mp_obs].

    Traces read like the protocol walkthrough in §3.3:

    {v
    [  412.3] h1  FAULT     read @69632 (view 2, vpage 0)
    [  424.3] h0  REQUEST   read mp#3 from h1
    [  431.3] h0  FORWARD   -> h2
    ...
    v} *)

type event = {
  time : float;
  host : int;
  kind : string;  (** FAULT, REQUEST, FORWARD, REPLY, INVAL, ACK, ... *)
  detail : string;
}

type t = Mp_obs.Recorder.t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are dropped. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> time:float -> host:int -> kind:string -> detail:string -> unit
(** No-op when disabled.  Recorded as an {!Mp_obs.Event.Mark}; typed protocol
    events come from the instrumentation hooks in {!Mp_obs.Recorder}. *)

val events : t -> event list
(** Oldest first, rendered from the typed events via
    {!Mp_obs.Event.kind_name} / {!Mp_obs.Event.detail}. *)

val dropped : t -> int
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val dump : t -> Format.formatter -> unit
(** Print the whole buffer, oldest first. *)

val find : t -> kind:string -> event list
