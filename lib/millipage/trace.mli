(** Protocol event tracing.

    A bounded ring buffer of timestamped protocol events, cheap enough to
    leave on in tests.  Traces read like the protocol walkthrough in §3.3:

    {v
    [  412.3] h1  FAULT     read @69632 (view 2, vpage 0)
    [  424.3] h0  REQUEST   read mp#3 from h1
    [  431.3] h0  FORWARD   -> h2
    ...
    v} *)

type event = {
  time : float;
  host : int;
  kind : string;  (** FAULT, REQUEST, FORWARD, REPLY, INVAL, ACK, ... *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are dropped. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> time:float -> host:int -> kind:string -> detail:string -> unit
(** No-op when disabled. *)

val events : t -> event list
(** Oldest first. *)

val dropped : t -> int
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val dump : t -> Format.formatter -> unit
(** Print the whole buffer, oldest first. *)

val find : t -> kind:string -> event list
