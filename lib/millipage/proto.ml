type access = Read | Write

type info = { mp_id : int; base_off : int; length : int; mp_view : int }

(* Per-minipage consistency protocol.  [Sc] is the paper's Figure-3
   single-writer invalidation protocol; [Rc] is the multi-writer
   release-consistent path (twin on write fault, run-length diffs flushed to
   the home at release, conservative local invalidation at acquire).  A
   minipage's mode is owned by its home and changes only at sync points,
   fenced by an epoch handshake so home, backup replica and sharers agree on
   the mode before the first post-switch access. *)
type mode = Sc | Rc

let mode_to_string = function Sc -> "sc" | Rc -> "rc"

(* One record of a home's logical write-ahead log, streamed to its backup
   host over the ARQ transport.  The channel is FIFO exactly-once, so the
   backup always holds a strict prefix of the primary's log: [L_admit]
   precedes the matching [L_complete], and an [L_state]/[L_shadow] never
   overtakes the operation that produced it. *)
type log_record =
  | L_admit of { req_id : int; mp_id : int }
      (** the home accepted an operation (request or push) on [mp_id] *)
  | L_complete of { req_id : int; at : float }
      (** the operation's final ack landed; [at] is the {e original}
          completion time, carried so the backup's idempotence horizon
          matches the primary's instead of restarting at promotion *)
  | L_state of { mp_id : int; owner : int; copyset : int list }
      (** directory state after a transfer/invalidation round settled *)
  | L_shadow of { mp_id : int; data : bytes }
      (** the home's shadow copy was refreshed; the backup's replica of the
          last release-consistent contents *)
  | L_mode of { mp_id : int; mode : mode; epoch : int }
      (** a mode switch completed its epoch handshake; the backup must serve
          the minipage under the same protocol after a promotion *)
  | L_diff of { mp_id : int; diff : Twin_diff.t }
      (** a release-time diff was applied to the home's master copy; the
          backup patches its replica shadow with the same runs (an [L_mode]
          to [Rc] always logs a full [L_shadow] first, so the patch target
          exists) *)

type body =
  | Request of { req_id : int; from : int; access : access; addr : int }
  | Forward of { req_id : int; from : int; access : access; info : info }
  | Reply_header of { req_id : int; access : access; info : info }
  | Reply_data of { req_id : int; access : access; info : info; data : bytes }
  | Write_grant of { req_id : int; info : info }
  | Invalidate of { req_id : int; info : info }
  | Invalidate_reply of { req_id : int; mp_id : int; from : int }
  | Ack of { req_id : int; mp_id : int; from : int }
  | Home_redirect of { req_id : int; mp_id : int; home : int }
  | Barrier_enter of { from : int; tid : int; phase : int }
  | Barrier_release of { phase : int }
  | Lock_acquire of { req_id : int; from : int; tid : int; lock : int }
  | Lock_grant of { lock : int; tid : int }
  | Lock_release of { from : int; lock : int }
  | Push of { req_id : int; from : int; info : info; data : bytes }
  | Push_update of { info : info; data : bytes }
  | Push_update_ack of { mp_id : int; from : int }
  | Push_complete of { req_id : int }
  | Group_fetch of { req_id : int; from : int; group_id : int }
  | Group_plan of { req_id : int; batches : int }
  | Forward_group of { req_id : int; from : int; members : info list }
  | Group_data of { req_id : int; members : (info * bytes) list }
  | Group_ack of { req_id : int; from : int; mp_ids : int list }
  | Group_replan of { req_id : int; drop : int }
  | Rc_data of { req_id : int; access : access; info : info; epoch : int; data : bytes }
      (** home → requester: a release-consistent serve straight from the
          home's master copy (no forward hop, no invalidation round); the
          reply itself tells the requester the minipage is in [Rc] mode *)
  | Rc_diff of {
      req_id : int;
      from : int;
      mp_id : int;
      epoch : int;
      diff : Twin_diff.t;
    }  (** sharer → home at release: the writes since the twin was taken *)
  | Rc_diff_ack of { req_id : int; mp_id : int }
      (** home → sharer: the diff reached the master copy; the release may
          complete *)
  | Mode_switch of { mp_id : int; epoch : int; mode : mode; info : info }
      (** home → sharers: epoch fence of a mode switch.  Receivers drop
          their local copies (flushing a dirty RC copy first — the channel
          is FIFO, so the diff always precedes the ack) and acknowledge. *)
  | Mode_ack of { mp_id : int; epoch : int; from : int; data : bytes option }
  | Heartbeat of { from : int; beat : int }
  | Dead_notice of { dead : int }
  | Log_append of { primary : int; lseq : int; record : log_record }
      (** home → its backup: the [lseq]'th record of the home's directory
          log (per-primary sequence, counted from 1) *)

(* Wire packets: protocol bodies travel inside [Data] with a per-channel
   sequence number so the reliable-transport layer in [Dsm] can detect loss,
   duplication and reordering; [Tack] is its transport-level acknowledgement.
   On a fault-free fabric the transport is inert and every body is sent as
   [Data { seq = 0; _ }]. *)
type packet = Data of { seq : int; body : body } | Tack of { seq : int }

let access_to_string = function Read -> "read" | Write -> "write"

let describe_record = function
  | L_admit { req_id; mp_id } -> Printf.sprintf "admit r%d mp%d" req_id mp_id
  | L_complete { req_id; _ } -> Printf.sprintf "complete r%d" req_id
  | L_state { mp_id; owner; copyset } ->
    Printf.sprintf "state mp%d o%d c%d" mp_id owner (List.length copyset)
  | L_shadow { mp_id; data } ->
    Printf.sprintf "shadow mp%d %dB" mp_id (Bytes.length data)
  | L_mode { mp_id; mode; epoch } ->
    Printf.sprintf "mode mp%d %s e%d" mp_id (mode_to_string mode) epoch
  | L_diff { mp_id; diff } ->
    Printf.sprintf "diff mp%d %dB" mp_id (Twin_diff.encoded_bytes diff)

let describe = function
  | Request { access; addr; _ } ->
    Printf.sprintf "REQUEST(%s @%d)" (access_to_string access) addr
  | Forward { access; info; _ } ->
    Printf.sprintf "FORWARD(%s mp%d)" (access_to_string access) info.mp_id
  | Reply_header { info; _ } -> Printf.sprintf "REPLY_HDR(mp%d)" info.mp_id
  | Reply_data { info; _ } -> Printf.sprintf "REPLY_DATA(mp%d)" info.mp_id
  | Write_grant { info; _ } -> Printf.sprintf "WRITE_GRANT(mp%d)" info.mp_id
  | Invalidate { info; _ } -> Printf.sprintf "INVALIDATE(mp%d)" info.mp_id
  | Invalidate_reply { mp_id; _ } -> Printf.sprintf "INVALIDATE_REPLY(mp%d)" mp_id
  | Ack { mp_id; _ } -> Printf.sprintf "ACK(mp%d)" mp_id
  | Home_redirect { mp_id; home; _ } ->
    Printf.sprintf "HOME_REDIRECT(mp%d -> h%d)" mp_id home
  | Barrier_enter { from; phase; _ } ->
    Printf.sprintf "BARRIER_ENTER(h%d p%d)" from phase
  | Barrier_release { phase } -> Printf.sprintf "BARRIER_RELEASE(p%d)" phase
  | Lock_acquire { lock; from; _ } -> Printf.sprintf "LOCK_ACQ(l%d h%d)" lock from
  | Lock_grant { lock; _ } -> Printf.sprintf "LOCK_GRANT(l%d)" lock
  | Lock_release { lock; from } -> Printf.sprintf "LOCK_REL(l%d h%d)" lock from
  | Push { info; _ } -> Printf.sprintf "PUSH(mp%d)" info.mp_id
  | Push_update { info; _ } -> Printf.sprintf "PUSH_UPDATE(mp%d)" info.mp_id
  | Push_update_ack { mp_id; _ } -> Printf.sprintf "PUSH_UPDATE_ACK(mp%d)" mp_id
  | Push_complete _ -> "PUSH_COMPLETE"
  | Group_fetch { group_id; from; _ } ->
    Printf.sprintf "GROUP_FETCH(g%d h%d)" group_id from
  | Group_plan { batches; _ } -> Printf.sprintf "GROUP_PLAN(%d batches)" batches
  | Forward_group { members; _ } ->
    Printf.sprintf "FORWARD_GROUP(%d minipages)" (List.length members)
  | Group_data { members; _ } ->
    Printf.sprintf "GROUP_DATA(%d minipages)" (List.length members)
  | Group_ack { mp_ids; _ } -> Printf.sprintf "GROUP_ACK(%d minipages)" (List.length mp_ids)
  | Group_replan { drop; _ } -> Printf.sprintf "GROUP_REPLAN(-%d batches)" drop
  (* [Rc_data] keeps "REPLY_" and [Rc_diff] keeps "DATA" in their labels so
     the profiler's cause buckets classify both as data traffic. *)
  | Rc_data { info; _ } -> Printf.sprintf "REPLY_RC(mp%d)" info.mp_id
  | Rc_diff { mp_id; _ } -> Printf.sprintf "DIFF_DATA(mp%d)" mp_id
  | Rc_diff_ack { mp_id; _ } -> Printf.sprintf "DIFF_ACK(mp%d)" mp_id
  | Mode_switch { mp_id; mode; epoch; _ } ->
    Printf.sprintf "MODE_SWITCH(mp%d %s e%d)" mp_id (mode_to_string mode) epoch
  | Mode_ack { mp_id; epoch; data; _ } ->
    Printf.sprintf "MODE_ACK(mp%d e%d%s)" mp_id epoch
      (match data with Some _ -> " +data" | None -> "")
  | Heartbeat { from; beat } -> Printf.sprintf "HEARTBEAT(h%d b%d)" from beat
  | Dead_notice { dead } -> Printf.sprintf "DEAD_NOTICE(h%d)" dead
  | Log_append { primary; lseq; record } ->
    Printf.sprintf "LOG_APPEND(h%d #%d %s)" primary lseq (describe_record record)

(* Data packets keep the bare body label so fault-free traces are identical
   with or without the transport wrapper. *)
let describe_packet = function
  | Data { body; _ } -> describe body
  | Tack { seq } -> Printf.sprintf "TACK(s%d)" seq
