(** Calibrated costs of basic DSM operations (Table 1 and §3.5).

    The primitive costs come straight from the paper's measurements on
    Pentium II 300 MHz / Windows NT 4.0 / FM-on-Myrinet; [dispatch_us],
    [wakeup_us] and [recv_dma_us_per_byte] are fitted so that the emergent
    end-to-end times (read fault 204/314 µs for 128 B / 4 KB minipages,
    write fault 212–366 µs, barrier 59–153 µs, lock+unlock 67–80 µs)
    reproduce §4.2. *)

type t = {
  fault_us : float;  (** access fault: exception raise → handler entry (26) *)
  get_prot_us : float;  (** VirtualQuery-style protection read (7) *)
  set_prot_us : float;  (** VirtualProtect per vpage (12) *)
  mpt_lookup_us : float;  (** minipage translation at the manager (7) *)
  header_bytes : int;  (** protocol message size (32) *)
  dispatch_us : float;
      (** per-message server-thread cost: FM receive processing + handler
          dispatch *)
  sync_dispatch_us : float;
      (** same, for the tiny barrier/lock handlers which do no translation *)
  wakeup_us : float;  (** SetEvent → blocked thread running again *)
  recv_dma_us_per_byte : float;
      (** per-byte cost of landing minipage contents in user memory *)
}

val default : t

val data_message_bytes : t -> int -> int
(** Wire size of a data message carrying a minipage of the given length. *)
